// Deadline/cancellation polling overhead bench (docs/robustness.md): the
// cooperative cancel checks added to the generator grow loop and the
// scanner probe loop must cost ~nothing when no deadline ever fires. Runs
// the full pipeline twice on the canonical world — once with every knob
// off (no token, no deadline, no iteration cap) and once fully armed with
// limits far too generous to trip — and reports wall seconds for both as
// CSV plus BENCH_deadline_overhead.json telemetry.
//
// Output equality between the two runs is a hard gate (exit non-zero on
// divergence): an armed-but-untripped watchdog must be invisible in every
// result byte. The overhead ratio is reported, not asserted — it is
// machine-dependent noise around 1.0.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/cancel.h"
#include "core/clock.h"

using namespace sixgen;

namespace {

bool SameOutput(const eval::PipelineResult& a, const eval::PipelineResult& b) {
  if (a.raw_hits != b.raw_hits || a.total_targets != b.total_targets ||
      a.total_probes != b.total_probes ||
      a.failed_prefixes != b.failed_prefixes ||
      a.deadline_prefixes != b.deadline_prefixes ||
      a.prefixes.size() != b.prefixes.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.prefixes.size(); ++i) {
    const eval::PrefixOutcome& x = a.prefixes[i];
    const eval::PrefixOutcome& y = b.prefixes[i];
    if (x.route != y.route || x.target_count != y.target_count ||
        x.hit_count != y.hit_count || x.probes_sent != y.probes_sent ||
        x.iterations != y.iterations || x.status != y.status) {
      return false;
    }
  }
  return true;
}

double RunOnce(const bench::World& world, const eval::PipelineConfig& config,
               eval::PipelineResult* out) {
  const std::uint64_t start_ns = core::MonotonicNanos();
  *out = eval::RunSixGenPipeline(world.universe, world.seeds, config);
  return static_cast<double>(core::MonotonicNanos() - start_ns) * 1e-9;
}

}  // namespace

int main() {
  bench::BenchMain telemetry("deadline_overhead");
  const bench::World world = bench::MakeWorld();
  constexpr int kReps = 3;

  // Armed configuration: every polling site active, nothing ever trips.
  core::CancelToken token;
  eval::PipelineConfig armed = bench::MakePipelineConfig(
      bench::kDefaultBudget);
  armed.cancel = &token;
  armed.run_deadline_seconds = 1e9;
  armed.prefix_deadline_seconds = 1e9;
  armed.core.max_iterations = 1'000'000'000;
  armed.scan.virtual_deadline_seconds = 1e9;

  const eval::PipelineConfig baseline =
      bench::MakePipelineConfig(bench::kDefaultBudget);

  eval::PipelineResult base_result;
  eval::PipelineResult armed_result;
  double base_best = 0.0;
  double armed_best = 0.0;
  std::printf("rep,baseline_seconds,armed_seconds\n");
  for (int rep = 0; rep < kReps; ++rep) {
    const double base_s = RunOnce(world, baseline, &base_result);
    const double armed_s = RunOnce(world, armed, &armed_result);
    if (rep == 0 || base_s < base_best) base_best = base_s;
    if (rep == 0 || armed_s < armed_best) armed_best = armed_s;
    std::printf("%d,%.3f,%.3f\n", rep, base_s, armed_s);
  }

  const bool identical = SameOutput(base_result, armed_result);
  const double overhead =
      base_best > 0.0 ? armed_best / base_best : 0.0;
  std::printf("overhead_ratio,%.3f\n", overhead);
  std::printf("identical,%d\n", identical ? 1 : 0);
  bench::PrintPaperNote(
      "§5.5/§7: real campaigns run for hours under time budgets; the "
      "watchdog that enforces them must not tax the runs that finish");

  telemetry.telemetry().SetProbes(base_result.total_probes);
  telemetry.telemetry().SetHits(base_result.raw_hits.size());
  telemetry.telemetry().SetTargets(base_result.total_targets);
  telemetry.telemetry().Extra("baseline_seconds", base_best);
  telemetry.telemetry().Extra("armed_seconds", armed_best);
  telemetry.telemetry().Extra("overhead_ratio", overhead);
  telemetry.telemetry().Extra("diverged", identical ? 0.0 : 1.0);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: armed-but-untripped deadlines changed the output\n");
    return 1;
  }
  return 0;
}
