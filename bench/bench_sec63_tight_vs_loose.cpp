// §6.3 ablation: tight vs. loose cluster ranges. The paper: with a 1 M
// budget per routed prefix, loose found 56.7 M raw / 1.0 M dealiased hits
// vs tight's 55.9 M / 973 K — loose slightly ahead, and adopted as the
// default.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("sec63_tight_vs_loose");
  const auto world = bench::MakeWorld(/*host_factor=*/0.6);

  auto run = [&](ip6::RangeMode mode) {
    auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
    config.core.range_mode = mode;
    return eval::RunSixGenPipeline(world.universe, world.seeds, config);
  };
  const auto loose = run(ip6::RangeMode::kLoose);
  const auto tight = run(ip6::RangeMode::kTight);

  std::printf("%s", analysis::Banner(
                        "Section 6.3: tight vs loose cluster ranges")
                        .c_str());
  analysis::TextTable table({"Range mode", "Raw hits", "Dealiased hits",
                             "Targets generated"});
  table.AddRow({"loose", std::to_string(loose.raw_hits.size()),
                std::to_string(loose.dealias.non_aliased_hits.size()),
                std::to_string(loose.total_targets)});
  table.AddRow({"tight", std::to_string(tight.raw_hits.size()),
                std::to_string(tight.dealias.non_aliased_hits.size()),
                std::to_string(tight.total_targets)});
  std::printf("%s", table.Render().c_str());

  std::printf("\nloose/tight raw-hit ratio:       %.3f\n",
              static_cast<double>(loose.raw_hits.size()) /
                  static_cast<double>(std::max<std::size_t>(
                      tight.raw_hits.size(), 1)));
  std::printf("loose/tight dealiased-hit ratio: %.3f\n",
              static_cast<double>(loose.dealias.non_aliased_hits.size()) /
                  static_cast<double>(std::max<std::size_t>(
                      tight.dealias.non_aliased_hits.size(), 1)));
  bench::PrintPaperNote(
      "§6.3: loose 56.7M raw / 1.0M dealiased vs tight 55.9M / 973K "
      "(ratios 1.014 / 1.028) — loose slightly ahead, adopted as default");
  return 0;
}
