// Table 2 (paper §6.7.2): 6Gen run on 1%, 10%, 25%, and 100% of the seed
// dataset — hits with and without dealiasing, and each level's percentage
// of the full-seed hit count. The paper's finding: the decrease in hits is
// sublinear in the downsampling rate.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("table2_downsampling");
  const auto world = bench::MakeWorld(/*host_factor=*/0.5);
  const auto config = bench::MakePipelineConfig(bench::kDefaultBudget);

  struct Row {
    double level;
    std::size_t raw = 0;
    std::size_t clean = 0;
  };
  std::vector<Row> rows;
  for (double level : {0.01, 0.10, 0.25, 1.00}) {
    const auto sample = eval::Downsample(world.seeds, level, 0xd0 + static_cast<std::uint64_t>(level * 100));
    const auto result =
        eval::RunSixGenPipeline(world.universe, sample, config);
    rows.push_back({level, result.raw_hits.size(),
                    result.dealias.non_aliased_hits.size()});
  }
  const Row& full = rows.back();

  std::printf("%s", analysis::Banner(
                        "Table 2: hits vs seed downsampling level "
                        "(budget per routed prefix fixed)")
                        .c_str());
  analysis::TextTable table({"Downsampling", "Hits w/o dealiasing", "% vs all",
                             "Hits w/ dealiasing", "% vs all"});
  for (const Row& row : rows) {
    auto pct = [](std::size_t n, std::size_t d) {
      return analysis::Percent(d == 0 ? 0.0
                                      : 100.0 * static_cast<double>(n) /
                                            static_cast<double>(d));
    };
    table.AddRow({analysis::Percent(row.level * 100, 0),
                  std::to_string(row.raw), pct(row.raw, full.raw),
                  std::to_string(row.clean), pct(row.clean, full.clean)});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintPaperNote(
      "Table 2: 1% -> 758K/225K (1.3%/22.5% of full), 10% -> 13.3M/713K "
      "(23.5%/71.3%), 25% -> 27.3M/825K (48.2%/82.5%), 100% -> 56.7M/1.0M. "
      "Decrease is sublinear: a 10% sample keeps 71% of dealiased hits");
  return 0;
}
