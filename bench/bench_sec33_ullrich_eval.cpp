// §3.3 related-work reproduction: Ullrich et al.'s own evaluation protocol.
//
// "Using 10-fold cross validation, where they used a subset of seeds for
// training and the rest for testing, the authors observed that their
// algorithm outperformed the other strategies [the RFC 7707 target
// prediction methods, such as varying the low-order bytes of seed
// addresses, and brute-force guessing] in predicting test addresses."
//
// We rebuild that experiment on a network with a learnable bit pattern
// (the regime the recursive bit-fixing algorithm was designed for), and
// also report 6Gen on the same folds — showing why variable-size ranges
// supersede the constant-size range (the paper's §3.3 critique).
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"
#include "core/generator.h"
#include "patterns/patterns.h"
#include "simnet/allocation.h"

using namespace sixgen;

namespace {

constexpr std::uint64_t kBudget = 20'000;

double Recall(const std::vector<ip6::Address>& targets,
              const ip6::AddressSet& test_set) {
  std::size_t found = 0;
  for (const auto& t : targets) {
    if (test_set.contains(t)) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(test_set.size());
}

}  // namespace

int main() {
  bench::BenchMain bench_main("sec33_ullrich_eval");
  // A patterned population the recursive bit-fixer was designed for: one
  // /48, subnets 0..7, and IIDs of the form  machine << 16 | 0x0080 — a
  // fixed service tail under a varying machine index. Varying the
  // low-order bytes of a seed (RFC 7707) cannot reach other machines, but
  // learning the fixed bits can.
  const auto prefix = ip6::Prefix::MustParse("2001:db8:77::/48");
  std::vector<ip6::Address> population;
  for (std::uint64_t subnet = 0; subnet < 8; ++subnet) {
    for (std::uint64_t machine = 0; machine < 400; ++machine) {
      population.push_back(ip6::Address::FromU128(
          prefix.network().ToU128() |
          (static_cast<ip6::U128>(subnet) << 64) | (machine << 16) | 0x80));
    }
  }

  // 10-fold cross validation, Ullrich-style: train on one fold (10%),
  // predict the remaining 90%.
  const auto folds = eval::InverseKFold(population, 10, 0xf01d5);
  std::vector<double> ullrich_scores, lowbyte_scores, random_scores,
      sixgen_scores;
  for (const auto& fold : folds) {
    const ip6::AddressSet test_set(fold.test.begin(), fold.test.end());

    patterns::UllrichConfig ullrich_config;
    ullrich_config.free_bits = 15;
    ullrich_config.initial = patterns::BitRange::FromPrefix(prefix);
    ullrich_scores.push_back(Recall(
        patterns::UllrichGenerate(fold.train, ullrich_config, kBudget, 1),
        test_set));

    lowbyte_scores.push_back(Recall(
        patterns::LowByteGenerate(fold.train, {}, kBudget), test_set));

    random_scores.push_back(
        Recall(patterns::RandomGenerate(prefix, kBudget, 2), test_set));

    core::Config gen_config;
    gen_config.budget = kBudget;
    sixgen_scores.push_back(
        Recall(core::Generate(fold.train, gen_config).targets, test_set));
  }

  std::printf("%s", analysis::Banner(
                        "Section 3.3: Ullrich et al. 10-fold evaluation "
                        "(patterned /48, budget 20K)")
                        .c_str());
  analysis::TextTable table(
      {"Strategy", "Mean recall", "Stddev", "Folds"});
  auto add = [&table](const char* name, std::span<const double> scores) {
    const auto stats = eval::SummarizeFolds(scores);
    table.AddRow({name, analysis::Percent(100 * stats.mean, 2),
                  analysis::Percent(100 * stats.stddev, 2),
                  std::to_string(stats.folds)});
  };
  add("Ullrich recursive (N=15)", ullrich_scores);
  add("RFC 7707 low-byte", lowbyte_scores);
  add("Brute-force random", random_scores);
  add("6Gen", sixgen_scores);
  std::printf("%s", table.Render().c_str());
  bench::PrintPaperNote(
      "§3.3 (Ullrich et al., qualitative): the recursive algorithm beats "
      "the RFC 7707 strategies and brute force on patterned allocation; "
      "6Gen's variable-size ranges should match or beat its single "
      "constant-size range");
  return 0;
}
