// Figure 7 (paper §6.6): distribution (quartiles) of dealiased TCP/80 hits
// per routed prefix, bucketed by the prefix's seed count — plus the §6.6
// churn check (hits minus inactive seeds).
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("fig7_hits_per_prefix");
  auto world = bench::MakeWorld();
  // §6.6 considers address churn: some seeds point at now-inactive hosts.
  world.universe.ApplyChurn(0.15, 0xc4u);

  const auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
  const auto result =
      eval::RunSixGenPipeline(world.universe, world.seeds, config);
  const auto clean = scanner::RollupHits(world.universe.routing(),
                                         result.dealias.non_aliased_hits);

  std::vector<std::pair<std::size_t, double>> hits_by_seed_count;
  std::size_t churn_positive = 0, churn_considered = 0;
  for (const auto& outcome : result.prefixes) {
    const auto it = clean.by_prefix.find(outcome.route.prefix);
    const double hits =
        it == clean.by_prefix.end() ? 0.0 : static_cast<double>(it->second);
    hits_by_seed_count.emplace_back(outcome.seed_count, hits);
    if (outcome.seed_count >= 10) {
      ++churn_considered;
      if (hits > static_cast<double>(outcome.inactive_seed_count)) {
        ++churn_positive;
      }
    }
  }

  std::printf("%s",
              analysis::Banner("Figure 7: dealiased hits per routed prefix, "
                               "bucketed by seed count (quartiles)")
                  .c_str());
  const auto buckets = analysis::BucketBySeedCount(hits_by_seed_count);
  analysis::TextTable table(
      {"Seeds per prefix", "Prefixes", "Min", "Q1", "Median", "Q3", "Max"});
  for (std::size_t b = 1; b < analysis::kSeedCountBuckets; ++b) {
    // The paper excludes prefixes with <10 seeds (90% had zero hits).
    if (buckets.values[b].empty()) continue;
    const auto q = analysis::ComputeQuartiles(buckets.values[b]);
    table.AddRow({analysis::SeedCountBucketLabel(b),
                  std::to_string(buckets.values[b].size()),
                  std::to_string(static_cast<long>(q.min)),
                  std::to_string(static_cast<long>(q.q1)),
                  std::to_string(static_cast<long>(q.median)),
                  std::to_string(static_cast<long>(q.q3)),
                  std::to_string(static_cast<long>(q.max))});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nchurn check (prefixes with >=10 seeds): hits exceed "
              "inactive seeds for %zu of %zu prefixes (%s)\n",
              churn_positive, churn_considered,
              analysis::Percent(churn_considered == 0
                                    ? 0.0
                                    : 100.0 *
                                          static_cast<double>(churn_positive) /
                                          static_cast<double>(churn_considered))
                  .c_str());
  bench::PrintPaperNote(
      "Fig. 7: positive correlation between seeds and hits per prefix; "
      "majority of >=10-seed prefixes have hits. §6.6: for a quarter of "
      "prefixes, hits - inactive seeds > 0 (discoveries beyond churn)");
  return 0;
}
