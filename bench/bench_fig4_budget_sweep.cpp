// Figure 4 (paper §6.4): number of TCP/80 hits for 6Gen targets at varying
// per-prefix budgets, with and without dealiasing. The paper observes the
// dealiased curve plateauing as the budget approaches its 1 M default; the
// scaled universe plateaus approaching the scaled 20 K default.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("fig4_budget_sweep");
  // A lighter world: the sweep runs the full pipeline once per budget.
  const auto world = bench::MakeWorld(/*host_factor=*/0.4);

  analysis::Series raw{"HitsWithoutDealiasing", {}};
  analysis::Series clean{"HitsWithDealiasing", {}};

  const std::uint64_t budgets[] = {500,  1000, 2000,  4000, 6000,
                                   8000, 12000, 16000, 20000};
  for (std::uint64_t budget : budgets) {
    const auto result = eval::RunSixGenPipeline(
        world.universe, world.seeds, bench::MakePipelineConfig(budget));
    raw.points.emplace_back(static_cast<double>(budget),
                            static_cast<double>(result.raw_hits.size()));
    clean.points.emplace_back(
        static_cast<double>(budget),
        static_cast<double>(result.dealias.non_aliased_hits.size()));
  }

  std::printf("%s", analysis::Banner(
                        "Figure 4: TCP/80 hits vs budget per routed prefix")
                        .c_str());
  std::printf("%s", analysis::RenderSeries("budget", {raw, clean}, 0).c_str());

  // Plateau check on the dealiased curve: marginal hits per marginal probe
  // over the last step vs the first step.
  const auto first_gain = clean.points[1].second - clean.points[0].second;
  const auto last_gain =
      clean.points.back().second - clean.points[clean.points.size() - 2].second;
  std::printf("\ndealiased marginal gain, first step: %.0f hits; last step: %.0f hits\n",
              first_gain, last_gain);
  bench::PrintPaperNote(
      "Fig. 4: dealiased hits plateau approaching 1 M probes/prefix "
      "(diminishing returns justify the 1 M default); raw hits keep "
      "climbing because aliased regions absorb any budget");
  return 0;
}
