// Shared setup for the figure/table bench binaries.
//
// Each bench regenerates one table or figure of the paper on the scaled
// evaluation universe (DESIGN.md §1 records the substitutions; EXPERIMENTS.md
// records paper-vs-measured values). The helpers here pin the canonical RNG
// seeds and scale factors so every binary reports against the same world.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "eval/pipeline.h"
#include "obs/bench_telemetry.h"
#include "obs/span.h"

namespace sixgen::bench {

/// Top-level instrumentation for a bench binary. Declare first in main():
/// the whole run is wrapped in a "bench.<name>" span and, at exit, a
/// sixgen-bench-v1 record (wall time, peak RSS, probes/sec, hit rate) is
/// written to $SIXGEN_BENCH_JSON_DIR/BENCH_<name>.json — see
/// obs/bench_telemetry.h and docs/observability.md. Telemetry is a side
/// channel: the stdout CSVs the figures are diffed against are untouched.
/// (Uses the obs classes directly, not the SIXGEN_OBS macros, so the
/// record is emitted even in SIXGEN_OBS=OFF builds.)
class BenchMain {
 public:
  explicit BenchMain(const std::string& name)
      : span_("bench." + name), reporter_(name) {}

  /// Override registry-derived probe/hit/target counts or attach extras.
  obs::BenchReporter& telemetry() { return reporter_; }

 private:
  obs::ScopedSpan span_;  // declared first: destroyed after the reporter
  obs::BenchReporter reporter_;
};

// Canonical world parameters shared by all benches.
inline constexpr std::uint64_t kUniverseSeed = 0x5eed'0001;
inline constexpr std::uint64_t kDnsSeedSeed = 0x5eed'0002;
inline constexpr double kSeedCoverage = 0.5;

// The paper's budget is 1 M probes per routed prefix against the real
// Internet; the scaled universe uses 20 K per prefix (EXPERIMENTS.md
// documents the scale factor next to each reproduced number).
inline constexpr std::uint64_t kDefaultBudget = 20'000;

struct World {
  simnet::Universe universe;
  std::vector<simnet::SeedRecord> seeds;
};

/// Builds the canonical evaluation world. `host_factor` scales host counts
/// for benches that need many pipeline runs.
inline World MakeWorld(double host_factor = 1.0) {
  eval::EvalScale scale;
  scale.host_factor = host_factor;
  World world{eval::MakeEvalUniverse(kUniverseSeed, scale), {}};
  world.seeds =
      eval::MakeDnsSeeds(world.universe, kDnsSeedSeed, kSeedCoverage);
  return world;
}

/// Canonical pipeline config at the given budget.
inline eval::PipelineConfig MakePipelineConfig(std::uint64_t budget) {
  eval::PipelineConfig config;
  config.budget_per_prefix = budget;
  return config;
}

/// Prints the "paper reported vs. we measured" epilogue line used by every
/// bench, keeping EXPERIMENTS.md and bench output consistent.
inline void PrintPaperNote(const std::string& note) {
  std::printf("paper: %s\n", note.c_str());
}

}  // namespace sixgen::bench
