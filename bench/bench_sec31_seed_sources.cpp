// §3.1 seed-source comparison (Gasser et al., TMA 2016): responsiveness of
// addresses collected from active sources (DNS records, rDNS walking)
// versus passive sources (IXP/uplink taps). The paper quotes 76% of
// active-source addresses responsive to ICMPv6 vs 13% from passive taps.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"
#include "simnet/observation.h"
#include "simnet/rdns.h"

using namespace sixgen;

namespace {

struct SourceStats {
  std::string name;
  std::size_t collected = 0;
  std::size_t unique = 0;
  std::size_t responsive = 0;
};

SourceStats Measure(const std::string& name,
                    const std::vector<ip6::Address>& observed,
                    const simnet::Universe& universe) {
  SourceStats stats;
  stats.name = name;
  stats.collected = observed.size();
  ip6::AddressSet unique(observed.begin(), observed.end());
  stats.unique = unique.size();
  scanner::ScanConfig config;
  config.service = simnet::Service::kIcmp;  // Gasser et al. probed ICMPv6
  scanner::SimulatedScanner scanner(universe, config);
  for (const auto& addr : unique) {
    if (scanner.Probe(addr)) ++stats.responsive;
  }
  return stats;
}

}  // namespace

int main() {
  bench::BenchMain bench_main("sec31_seed_sources");
  const auto world = bench::MakeWorld(/*host_factor=*/0.4);

  // Active source 1: DNS AAAA records (the repo's canonical seed source).
  std::vector<ip6::Address> dns = simnet::SeedAddresses(world.seeds);

  // Active source 2: rDNS prefix walking (Fiebig et al.).
  const simnet::ReverseDns rdns(world.universe, {});
  std::vector<ip6::Address> walked;
  for (const auto& route : world.universe.routing().Routes()) {
    const auto walk = simnet::WalkReverseDns(rdns, route.prefix);
    walked.insert(walked.end(), walk.addresses.begin(), walk.addresses.end());
  }

  // Passive source: IXP-style tap dominated by expired privacy addresses.
  const auto passive =
      simnet::SamplePassiveTap(world.universe, dns.size() * 2);

  std::printf("%s", analysis::Banner(
                        "Section 3.1: seed-source responsiveness on ICMPv6 "
                        "(Gasser et al.)")
                        .c_str());
  analysis::TextTable table(
      {"Source", "Addresses", "Unique", "Responsive", "% responsive"});
  for (const SourceStats& stats :
       {Measure("DNS AAAA records (active)", dns, world.universe),
        Measure("rDNS walking (active)", walked, world.universe),
        Measure("IXP passive tap", passive, world.universe)}) {
    table.AddRow({stats.name, std::to_string(stats.collected),
                  std::to_string(stats.unique),
                  std::to_string(stats.responsive),
                  analysis::Percent(stats.unique == 0
                                        ? 0.0
                                        : 100.0 *
                                              static_cast<double>(
                                                  stats.responsive) /
                                              static_cast<double>(stats.unique))});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintPaperNote(
      "§3.1 (Gasser et al.): 76% of active-source addresses responsive to "
      "ICMPv6 vs 13% from passive taps — active sources must dominate "
      "passive ones by roughly this margin");
  return 0;
}
