// Figure 6 (paper §6.5): for each nybble index 1..32, the portion of
// routed prefixes having any cluster range with that nybble dynamic. The
// paper finds a bimodal shape: subnet-identifier nybbles 9-16 (RFC 2460's
// 64-bit network identifier) and the low-order IID nybbles >= 29 (RFC 7707
// low-byte practice).
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench_common.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("fig6_dynamic_nybbles");
  const auto world = bench::MakeWorld();
  auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
  config.run_dealias = false;
  const auto result =
      eval::RunSixGenPipeline(world.universe, world.seeds, config);

  std::vector<std::array<bool, ip6::kNybbles>> flags;
  flags.reserve(result.prefixes.size());
  for (const auto& outcome : result.prefixes) {
    flags.push_back(outcome.cluster_stats.dynamic_nybbles);
  }
  const auto fractions = analysis::DynamicNybbleFractions(flags);

  std::printf("%s",
              analysis::Banner("Figure 6: portion of routed prefixes with a "
                               "dynamic nybble at each index")
                  .c_str());
  analysis::TextTable table({"Nybble index", "Portion of routed prefixes", ""});
  for (unsigned i = 0; i < ip6::kNybbles; ++i) {
    const int bars = static_cast<int>(fractions[i] * 50);
    table.AddRow({std::to_string(i + 1),  // the paper indexes 1..32
                  analysis::Percent(100.0 * fractions[i]),
                  std::string(static_cast<std::size_t>(bars), '#')});
  }
  std::printf("%s", table.Render().c_str());

  // Mode summary: mass in the subnet-id band vs the low-IID band vs rest.
  double subnet_band = 0, low_band = 0, other = 0;
  for (unsigned i = 0; i < ip6::kNybbles; ++i) {
    if (i + 1 >= 9 && i + 1 <= 16) {
      subnet_band += fractions[i];
    } else if (i + 1 >= 29) {
      low_band += fractions[i];
    } else {
      other += fractions[i];
    }
  }
  std::printf("\nmean portion, nybbles 9-16 (subnet id): %s\n",
              analysis::Percent(100.0 * subnet_band / 8).c_str());
  std::printf("mean portion, nybbles 29-32 (low IID):  %s\n",
              analysis::Percent(100.0 * low_band / 4).c_str());
  std::printf("mean portion, other nybbles:            %s\n",
              analysis::Percent(100.0 * other / 20).c_str());
  bench::PrintPaperNote(
      "Fig. 6: bimodal — one mode across nybbles 9-16 (RFC 2460 64-bit "
      "network identifier), a second after nybble 29 (RFC 7707 low-byte "
      "practice)");
  return 0;
}
