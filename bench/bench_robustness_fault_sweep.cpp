// Robustness sweep (docs/robustness.md): run the full §6 pipeline under an
// increasingly hostile FaultPlan and emit hit-rate-vs-fault-severity CSV,
// once with a fragile single-probe scanner and once with the resilient
// retry/backoff configuration. Severity 0 is the pristine network: both
// profiles must reproduce the fault-free hit count exactly (the FaultyChannel
// is bypassed for an all-zero plan).
#include <cstdio>

#include "bench_common.h"
#include "faultnet/fault_plan.h"

using namespace sixgen;

namespace {

// Every fault model engaged at once, scaled by one severity knob.
faultnet::FaultPlan PlanAtSeverity(double severity) {
  faultnet::FaultPlan plan;
  if (severity <= 0.0) return plan;  // all-zero: pristine network
  plan.rng_seed = 0xfa017;
  plan.burst_loss.p_enter_burst = 0.02 * severity;
  plan.burst_loss.p_exit_burst = 0.25;
  plan.burst_loss.loss_good = 0.03 * severity;
  plan.burst_loss.loss_bad = 0.85 * severity;
  plan.rate_limit.tokens_per_second = 60'000.0 * (1.05 - severity);
  plan.rate_limit.bucket_capacity = 128.0;
  plan.duplicate_prob = 0.04 * severity;
  plan.late_prob = 0.04 * severity;
  return plan;
}

struct Profile {
  const char* name;
  unsigned attempts;
  double backoff_initial_seconds;
};

}  // namespace

int main() {
  bench::BenchMain bench_main("robustness_fault_sweep");
  const bench::World world = bench::MakeWorld(/*host_factor=*/0.25);

  constexpr double kSeverities[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  constexpr Profile kProfiles[] = {
      {"fragile", 1, 0.0},     // one probe per target, no pacing
      {"resilient", 3, 0.01},  // retries with exponential backoff
  };

  // Pristine baseline for the hit-rate denominator.
  eval::PipelineConfig pristine = bench::MakePipelineConfig(2000);
  pristine.run_dealias = false;
  const std::size_t pristine_hits =
      eval::RunSixGenPipeline(world.universe, world.seeds, pristine)
          .raw_hits.size();

  std::printf(
      "profile,severity,raw_hits,hit_rate_vs_pristine,probes,lost,"
      "rate_limited,blackholed,outages,late,duplicates,failed_prefixes,"
      "scan_virtual_seconds\n");
  for (const Profile& profile : kProfiles) {
    for (double severity : kSeverities) {
      eval::PipelineConfig config = bench::MakePipelineConfig(2000);
      config.run_dealias = false;
      config.scan.attempts = profile.attempts;
      config.scan.backoff_initial_seconds = profile.backoff_initial_seconds;
      config.fault_plan = PlanAtSeverity(severity);
      const eval::PipelineResult result =
          eval::RunSixGenPipeline(world.universe, world.seeds, config);

      double virtual_seconds = 0.0;
      for (const eval::PrefixOutcome& outcome : result.prefixes) {
        virtual_seconds += outcome.scan_virtual_seconds;
      }
      std::printf("%s,%.1f,%zu,%.4f,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%.3f\n",
                  profile.name, severity, result.raw_hits.size(),
                  pristine_hits == 0
                      ? 0.0
                      : static_cast<double>(result.raw_hits.size()) /
                            static_cast<double>(pristine_hits),
                  result.total_probes, result.faults.lost,
                  result.faults.rate_limited, result.faults.blackholed,
                  result.faults.outages, result.faults.late,
                  result.faults.duplicates, result.failed_prefixes,
                  virtual_seconds);
    }
  }
  bench::PrintPaperNote(
      "no direct paper analogue; §6 scans tolerated real-Internet loss and "
      "rate limiting — this sweep shows retries/backoff recovering hits the "
      "fragile profile loses");
  return 0;
}
