// Table 1 (paper §6.1/§6.2/§6.6): top-10 ASes by share of (a) seed
// addresses, (b) aliased hits, (c) non-aliased hits — plus the §6.2
// aliasing summary statistics.
#include <cstdio>
#include <set>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"

using namespace sixgen;

namespace {

void PrintTopTable(const char* title,
                   const std::unordered_map<routing::Asn, std::size_t>& by_as,
                   const routing::AsRegistry& registry) {
  std::printf("%s", analysis::Banner(title).c_str());
  analysis::TextTable table({"AS Name", "ASN", "Count", "% Addresses"});
  for (const auto& row : analysis::TopAses(by_as, registry, 10)) {
    table.AddRow({row.name, std::to_string(row.asn), std::to_string(row.count),
                  analysis::Percent(row.percent)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace

int main() {
  bench::BenchMain bench_main("table1_top_ases");
  const auto world = bench::MakeWorld();
  const auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
  const auto result =
      eval::RunSixGenPipeline(world.universe, world.seeds, config);

  // (a) Seeds.
  std::unordered_map<routing::Asn, std::size_t> seeds_by_as;
  for (const auto& seed : world.seeds) {
    if (auto asn = world.universe.routing().OriginAs(seed.addr)) {
      ++seeds_by_as[*asn];
    }
  }
  PrintTopTable("Table 1a: Top ASes by seed addresses", seeds_by_as,
                world.universe.registry());
  bench::PrintPaperNote(
      "Table 1a top seed ASes: Linode 8.6%, Amazon 8.1%, HostEurope 6.6% "
      "(distribution not heavily skewed)");

  // (b) Aliased hits.
  const auto aliased = scanner::RollupHits(world.universe.routing(),
                                           result.dealias.aliased_hits);
  PrintTopTable("Table 1b: Top ASes by aliased hits", aliased.by_as,
                world.universe.registry());
  bench::PrintPaperNote(
      "Table 1b: Akamai 52.0% and Amazon 36.0% dominate aliased hits");

  // (c) Non-aliased hits.
  const auto clean = scanner::RollupHits(world.universe.routing(),
                                         result.dealias.non_aliased_hits);
  PrintTopTable("Table 1c: Top ASes by non-aliased hits", clean.by_as,
                world.universe.registry());
  bench::PrintPaperNote(
      "Table 1c: hosting providers (Amazon 12.9%/7.7%, OVH 7.1%, Hetzner "
      "5.7%) lead after dealiasing; no aliased CDN in the top ten");

  // §6.2 aliasing summary.
  std::printf("%s", analysis::Banner("Section 6.2: aliasing summary").c_str());
  std::printf("raw hits:                 %zu\n", result.raw_hits.size());
  std::printf("aliased hits:             %zu (%s of raw)\n",
              result.dealias.aliased_hits.size(),
              analysis::Percent(100.0 *
                                static_cast<double>(
                                    result.dealias.aliased_hits.size()) /
                                static_cast<double>(result.raw_hits.size()))
                  .c_str());
  std::printf("non-aliased hits:         %zu\n",
              result.dealias.non_aliased_hits.size());
  std::printf("hit /96 prefixes tested:  %zu\n", result.dealias.prefixes_tested);
  std::printf("aliased /96 prefixes:     %zu (%s)\n",
              result.dealias.aliased_prefixes.size(),
              analysis::Percent(100.0 * result.dealias.AliasedPrefixFraction())
                  .c_str());
  std::printf("ASes excluded at /112:   ");
  for (routing::Asn asn : result.dealias.excluded_ases) {
    std::printf(" %s(%u)", world.universe.registry().NameOf(asn).c_str(), asn);
  }
  std::printf("\n");

  std::set<routing::Asn> aliased_ases;
  for (const auto& [asn, count] : aliased.by_as) aliased_ases.insert(asn);
  for (routing::Asn asn : result.dealias.excluded_ases) {
    aliased_ases.insert(asn);
  }
  std::size_t total_ases = world.universe.registry().Size();
  std::printf("ASes exhibiting aliasing: %zu of %zu (%s)\n",
              aliased_ases.size(), total_ases,
              analysis::Percent(100.0 *
                                static_cast<double>(aliased_ases.size()) /
                                static_cast<double>(total_ases))
                  .c_str());
  bench::PrintPaperNote(
      "§6.2: 98% of raw hits aliased; 10.0M of 10.2M hit /96s aliased; 140 "
      "of 7,421 ASes (1.9%) alias; Cloudflare+Mittwald aliased at /112. "
      "Scaled universe: aliased share tracks budget (see Fig. 4 bench).");
  return 0;
}
