// Figure 5 (paper §6.5): CDFs of the number of singleton clusters (5a) and
// grown clusters (5b) that 6Gen outputs per routed prefix, bucketed by the
// prefix's seed count.
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench_common.h"

using namespace sixgen;

namespace {

void PrintClusterCdf(const char* title,
                     const analysis::BucketedValues& buckets) {
  std::printf("%s", analysis::Banner(title).c_str());
  std::vector<analysis::Series> series;
  for (std::size_t b = 0; b < analysis::kSeedCountBuckets; ++b) {
    if (buckets.values[b].empty()) continue;
    analysis::Cdf cdf(buckets.values[b]);
    analysis::Series s{analysis::SeedCountBucketLabel(b), {}};
    for (double x : {0.0, 1.0, 2.0, 5.0, 10.0, 100.0, 1000.0, 10000.0}) {
      s.points.emplace_back(x, cdf.At(x));
    }
    series.push_back(std::move(s));
  }
  std::printf("%s", analysis::RenderSeries("count<=", series).c_str());
}

}  // namespace

int main() {
  bench::BenchMain bench_main("fig5_cluster_cdfs");
  const auto world = bench::MakeWorld();
  auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
  config.run_dealias = false;  // cluster shape does not need the scan
  const auto result =
      eval::RunSixGenPipeline(world.universe, world.seeds, config);

  std::vector<std::pair<std::size_t, double>> singletons;
  std::vector<std::pair<std::size_t, double>> grown;
  std::size_t prefixes_with_10_seeds_no_grown = 0, prefixes_with_10_seeds = 0;
  std::size_t small_prefixes_no_grown = 0, small_prefixes = 0;
  for (const auto& outcome : result.prefixes) {
    singletons.emplace_back(
        outcome.seed_count,
        static_cast<double>(outcome.cluster_stats.singleton_clusters));
    grown.emplace_back(
        outcome.seed_count,
        static_cast<double>(outcome.cluster_stats.grown_clusters));
    if (outcome.seed_count >= 10) {
      ++prefixes_with_10_seeds;
      if (outcome.cluster_stats.grown_clusters == 0) {
        ++prefixes_with_10_seeds_no_grown;
      }
    } else if (outcome.seed_count >= 2) {
      ++small_prefixes;
      if (outcome.cluster_stats.grown_clusters == 0) {
        ++small_prefixes_no_grown;
      }
    }
  }

  PrintClusterCdf("Figure 5a: CDF of singleton clusters per routed prefix",
                  analysis::BucketBySeedCount(singletons));
  PrintClusterCdf("Figure 5b: CDF of grown clusters per routed prefix",
                  analysis::BucketBySeedCount(grown));

  if (prefixes_with_10_seeds > 0) {
    std::printf("\nprefixes with >=10 seeds and no grown cluster: %s\n",
                analysis::Percent(
                    100.0 * static_cast<double>(prefixes_with_10_seeds_no_grown) /
                    static_cast<double>(prefixes_with_10_seeds))
                    .c_str());
  }
  if (small_prefixes > 0) {
    std::printf("prefixes with 2-10 seeds and no grown cluster: %s\n",
                analysis::Percent(100.0 *
                                  static_cast<double>(small_prefixes_no_grown) /
                                  static_cast<double>(small_prefixes))
                    .c_str());
  }
  bench::PrintPaperNote(
      "Fig. 5: only 3% of prefixes with >=10 seeds (12% with 2-10) had no "
      "grown cluster; 6Gen forms few clusters relative to seeds — e.g. half "
      "the 100-1000-seed prefixes had <=10 grown clusters");
  return 0;
}
