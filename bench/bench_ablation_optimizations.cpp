// §5.5 ablation bench: the two published optimizations (best-growth cache,
// nybble tree) and the exact-vs-arithmetic budget accounting, measured as
// wall-clock of a full 6Gen run over a structured routed prefix. Verifies
// the optimizations preserve output (as the generator tests do) while
// showing their runtime effect.
#include <benchmark/benchmark.h>

#include <random>

#include "bench_common.h"
#include "core/generator.h"
#include "simnet/allocation.h"

using namespace sixgen;

namespace {

std::vector<ip6::Address> MakeSeeds(std::size_t count) {
  std::mt19937_64 rng(7);
  const auto network = ip6::Prefix::MustParse("2001:db8::/32");
  const auto subnets = simnet::AllocateSubnets(network, 64, 8, 1.0, rng);
  std::vector<ip6::Address> seeds;
  while (seeds.size() < count) {
    const auto hosts = simnet::AllocateHosts(
        subnets[seeds.size() % subnets.size()],
        simnet::AllocationPolicy::kSequential, 64, rng);
    seeds.insert(seeds.end(), hosts.begin(), hosts.end());
  }
  seeds.resize(count);
  return seeds;
}

void RunWith(benchmark::State& state, core::Config config) {
  const auto seeds = MakeSeeds(800);
  config.budget = 8'000;
  for (auto _ : state) {
    auto result = core::Generate(seeds, config);
    benchmark::DoNotOptimize(result.budget_used);
  }
}

void BM_Baseline(benchmark::State& state) { RunWith(state, {}); }

void BM_NoGrowthCache(benchmark::State& state) {
  core::Config config;
  config.use_growth_cache = false;
  RunWith(state, config);
}

void BM_NoNybbleTree(benchmark::State& state) {
  core::Config config;
  config.use_nybble_tree = false;
  RunWith(state, config);
}

void BM_ArithmeticAccounting(benchmark::State& state) {
  core::Config config;
  config.accounting = core::BudgetAccounting::kArithmetic;
  RunWith(state, config);
}

void BM_SingleThread(benchmark::State& state) {
  core::Config config;
  config.threads = 1;
  RunWith(state, config);
}

}  // namespace

BENCHMARK(BM_Baseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoGrowthCache)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NoNybbleTree)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ArithmeticAccounting)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleThread)->Unit(benchmark::kMillisecond);

// Explicit main (instead of BENCHMARK_MAIN) so the run is wrapped in the
// bench telemetry reporter like every other bench binary.
int main(int argc, char** argv) {
  bench::BenchMain bench_main("ablation_optimizations");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
