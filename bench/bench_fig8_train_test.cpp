// Figure 8 (paper §7.1): train-and-test comparison of 6Gen and Entropy/IP
// on the five CDN datasets. Train on a random 1 K (10%) sample, generate
// targets at varying budgets, report the fraction of the 9 K held-out
// addresses found. The paper: 6Gen predicted 1.04-7.95x more than
// Entropy/IP (excluding CDN 1 where E/IP found none); >88% for CDNs 4-5
// (6Gen >99% on CDN 4); both fail on CDNs 1-2.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"
#include "core/generator.h"
#include "entropyip/entropyip.h"

using namespace sixgen;

namespace {

constexpr std::uint64_t kBudgets[] = {1000,  5000,  10000, 20000,
                                      40000, 70000, 100000};

double FractionFound(const std::vector<ip6::Address>& targets,
                     const ip6::AddressSet& test_set) {
  std::size_t found = 0;
  for (const auto& t : targets) {
    if (test_set.contains(t)) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(test_set.size());
}

}  // namespace

int main() {
  bench::BenchMain bench_main("fig8_train_test");
  std::printf("%s",
              analysis::Banner("Figure 8: train-and-test — fraction of test "
                               "addresses found vs budget (train 10%, "
                               "test 90%)")
                  .c_str());

  std::vector<analysis::Series> series;
  for (unsigned cdn_index = 1; cdn_index <= eval::kCdnCount; ++cdn_index) {
    const auto cdn = eval::MakeCdnDataset(cdn_index, 0xcd0 + cdn_index);
    const auto split = eval::SplitTrainTest(cdn.addresses, 10, 0x517);
    const ip6::AddressSet test_set(split.test.begin(), split.test.end());

    analysis::Series sixgen{"6Gen-" + cdn.name, {}};
    analysis::Series eip{"E/IP-" + cdn.name, {}};

    // Entropy/IP fits once; the budget only scales the number of targets
    // (§7.1). 6Gen re-runs per budget since the budget shapes clustering.
    const auto model = entropyip::EntropyIpModel::Fit(split.train);
    for (std::uint64_t budget : kBudgets) {
      core::Config gen_config;
      gen_config.budget = budget;
      const auto sixgen_targets = core::Generate(split.train, gen_config);
      sixgen.points.emplace_back(
          static_cast<double>(budget),
          FractionFound(sixgen_targets.targets, test_set));

      entropyip::GenerateConfig eip_config;
      eip_config.budget = budget;
      eip.points.emplace_back(
          static_cast<double>(budget),
          FractionFound(model.GenerateTargets(eip_config), test_set));
    }
    series.push_back(std::move(sixgen));
    series.push_back(std::move(eip));
  }

  std::printf("%s", analysis::RenderSeries("budget", series).c_str());

  // Headline ratio at the top budget.
  std::printf("\n6Gen/EntropyIP ratio at max budget:\n");
  for (std::size_t c = 0; c < series.size(); c += 2) {
    const double g = series[c].points.back().second;
    const double e = series[c + 1].points.back().second;
    std::printf("  %-6s %.4f vs %.4f  (%.2fx)\n",
                series[c].name.substr(5).c_str(), g, e,
                e > 0 ? g / e : 0.0);
  }
  bench::PrintPaperNote(
      "Fig. 8: 6Gen finds 1.04-7.95x more test addresses than Entropy/IP "
      "at 1M budget; CDN4 >99% (6Gen), CDN5 >88% (both); CDNs 1-2 mostly "
      "unpredictable; E/IP curves smooth, 6Gen jumps as dense regions "
      "enter the budget");
  return 0;
}
