// Figure 3 (paper §6.1/§6.6): CDF of seed addresses, aliased hits, and
// non-aliased hits across ASNs (ASes ordered by address count).
#include <cstdio>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"

using namespace sixgen;

namespace {

analysis::Series CdfSeries(
    const std::string& name,
    const std::unordered_map<routing::Asn, std::size_t>& by_as) {
  analysis::Series series{name, {}};
  const auto cdf = analysis::AddressCdfByAsRank(by_as);
  // Sample at the paper's log-scale x ticks: AS ranks 1, 2, 5, 10, ....
  for (std::size_t rank : {1u, 2u, 5u, 10u, 20u, 50u, 100u, 200u}) {
    if (rank > cdf.size()) break;
    series.points.emplace_back(static_cast<double>(rank), cdf[rank - 1]);
  }
  if (!cdf.empty()) {
    series.points.emplace_back(static_cast<double>(cdf.size()), cdf.back());
  }
  return series;
}

}  // namespace

int main() {
  bench::BenchMain bench_main("fig3_asn_cdf");
  const auto world = bench::MakeWorld();
  const auto config = bench::MakePipelineConfig(bench::kDefaultBudget);
  const auto result =
      eval::RunSixGenPipeline(world.universe, world.seeds, config);

  std::unordered_map<routing::Asn, std::size_t> seeds_by_as;
  for (const auto& seed : world.seeds) {
    if (auto asn = world.universe.routing().OriginAs(seed.addr)) {
      ++seeds_by_as[*asn];
    }
  }
  const auto aliased = scanner::RollupHits(world.universe.routing(),
                                           result.dealias.aliased_hits);
  const auto clean = scanner::RollupHits(world.universe.routing(),
                                         result.dealias.non_aliased_hits);

  std::printf("%s", analysis::Banner(
                        "Figure 3: CDF of addresses across ASNs "
                        "(x = number of ASes, ordered by addresses per ASN)")
                        .c_str());
  std::printf("%s",
              analysis::RenderSeries(
                  "ASes", {CdfSeries("SeedAddresses", seeds_by_as),
                           CdfSeries("AliasedHits", aliased.by_as),
                           CdfSeries("NonAliasedHits", clean.by_as)})
                  .c_str());

  const auto aliased_cdf = analysis::AddressCdfByAsRank(aliased.by_as);
  if (aliased_cdf.size() >= 5) {
    std::printf("\naliased hits covered by top 5 ASes: %s\n",
                analysis::Percent(100.0 * aliased_cdf[4]).c_str());
  }
  bench::PrintPaperNote(
      "Fig. 3: seeds spread across thousands of ASes (no heavy skew); "
      "~95% of aliased hits localized in five ASes; non-aliased hits "
      "slightly more skewed than seeds");
  return 0;
}
