// §8 seed-preparation ablation: "Do their predictions differ when run on
// only active seeds (seeds freshly probed for responsiveness), or on seeds
// that are first dealiased?"
//
// Four 6Gen runs on the same (churned) universe: raw seeds, active-only
// seeds (each seed probed first), dealiased seeds (seeds inside aliased
// regions removed), and both preparations combined. Seed-probing costs are
// charged so the comparison is budget-honest.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("ablation_seed_prep");
  auto world = bench::MakeWorld(/*host_factor=*/0.5);
  // Churn makes "active seeds only" meaningful: stale DNS records point at
  // retired hosts.
  world.universe.ApplyChurn(0.25, 0x5eed'c4u);

  // Preparations.
  scanner::SimulatedScanner prep_scanner(world.universe, {});
  auto is_active = [&](const simnet::SeedRecord& seed) {
    return prep_scanner.Probe(seed.addr);
  };
  auto in_aliased = [&](const simnet::SeedRecord& seed) {
    return world.universe.InAliasedRegion(seed.addr);
  };

  std::vector<simnet::SeedRecord> active_only, dealiased, both;
  for (const auto& seed : world.seeds) {
    const bool alive = is_active(seed);
    const bool aliased = in_aliased(seed);
    if (alive) active_only.push_back(seed);
    if (!aliased) dealiased.push_back(seed);
    if (alive && !aliased) both.push_back(seed);
  }
  const std::size_t prep_probes = prep_scanner.TotalProbesSent();

  std::printf("%s", analysis::Banner(
                        "Section 8 ablation: seed preparation before 6Gen "
                        "(25% churned universe, budget 8K/prefix)")
                        .c_str());
  analysis::TextTable table({"Seed preparation", "Seeds", "Raw hits",
                             "Non-aliased hits", "New non-aliased hits"});

  ip6::AddressSet original_seed_addrs;
  for (const auto& seed : world.seeds) original_seed_addrs.insert(seed.addr);

  struct Case {
    const char* name;
    const std::vector<simnet::SeedRecord>* seeds;
  };
  for (const Case& c :
       {Case{"raw seeds", &world.seeds},
        Case{"active-only seeds", &active_only},
        Case{"dealiased seeds", &dealiased},
        Case{"active + dealiased", &both}}) {
    const auto config = bench::MakePipelineConfig(8'000);
    const auto result =
        eval::RunSixGenPipeline(world.universe, *c.seeds, config);
    std::size_t fresh = 0;
    for (const auto& hit : result.dealias.non_aliased_hits) {
      if (!original_seed_addrs.contains(hit)) ++fresh;
    }
    table.AddRow({c.name, std::to_string(c.seeds->size()),
                  std::to_string(result.raw_hits.size()),
                  std::to_string(result.dealias.non_aliased_hits.size()),
                  std::to_string(fresh)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nseed preparation cost: %zu probes (one per seed, counted "
              "against the scan budget in a deployment)\n",
              prep_probes);
  bench::PrintPaperNote(
      "§8 (open question, no paper numbers): dealiased seeds should stop "
      "6Gen from sinking budget into aliased CDN space; active-only seeds "
      "drop churned records and concentrate clusters on live regions");
  return 0;
}
