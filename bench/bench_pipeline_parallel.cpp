// Multi-prefix pipeline scaling bench (docs/performance.md): runs the
// full §6 pipeline at --jobs 1/2/4/8 on one canonical world and reports
// wall seconds and speedup per job count as CSV. The perf-smoke CI job
// records the emitted BENCH_pipeline_parallel.json as the repo's first
// perf-trajectory baseline.
//
// Output equality is a hard gate, not a statistic: the binary exits
// non-zero if any job count diverges from the serial run's raw hits,
// probe totals, or per-prefix outcomes. Speedup is reported but not
// asserted — it depends on the machine (a single-core CI runner shows
// ~1.0x; the ordered-commit scheduler targets >= 3x at 8 jobs on 8+
// cores).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/clock.h"

using namespace sixgen;

namespace {

struct RunSample {
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  eval::PipelineResult result;
};

bool SameOutput(const eval::PipelineResult& a, const eval::PipelineResult& b) {
  if (a.raw_hits != b.raw_hits || a.total_targets != b.total_targets ||
      a.total_probes != b.total_probes ||
      a.failed_prefixes != b.failed_prefixes ||
      a.prefixes.size() != b.prefixes.size() ||
      a.dealias.non_aliased_hits != b.dealias.non_aliased_hits) {
    return false;
  }
  for (std::size_t i = 0; i < a.prefixes.size(); ++i) {
    const eval::PrefixOutcome& x = a.prefixes[i];
    const eval::PrefixOutcome& y = b.prefixes[i];
    if (x.route != y.route || x.budget != y.budget ||
        x.target_count != y.target_count || x.hit_count != y.hit_count ||
        x.probes_sent != y.probes_sent || x.iterations != y.iterations) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::BenchMain telemetry("pipeline_parallel");
  const bench::World world = bench::MakeWorld();
  const std::size_t job_counts[] = {1, 2, 4, 8};

  std::vector<RunSample> samples;
  for (const std::size_t jobs : job_counts) {
    RunSample sample;
    sample.jobs = jobs;
    eval::PipelineConfig config = bench::MakePipelineConfig(
        bench::kDefaultBudget);
    config.jobs = jobs;
    const std::uint64_t start_ns = core::MonotonicNanos();
    sample.result =
        eval::RunSixGenPipeline(world.universe, world.seeds, config);
    sample.wall_seconds =
        static_cast<double>(core::MonotonicNanos() - start_ns) * 1e-9;
    samples.push_back(std::move(sample));
  }

  const double serial_seconds = samples.front().wall_seconds;
  bool diverged = false;
  std::printf("jobs,wall_seconds,speedup_vs_serial,raw_hits,identical\n");
  for (const RunSample& sample : samples) {
    const bool identical = SameOutput(sample.result, samples.front().result);
    diverged = diverged || !identical;
    std::printf("%zu,%.3f,%.2f,%zu,%d\n", sample.jobs, sample.wall_seconds,
                sample.wall_seconds > 0.0
                    ? serial_seconds / sample.wall_seconds
                    : 0.0,
                sample.result.raw_hits.size(), identical ? 1 : 0);
  }
  bench::PrintPaperNote(
      "§5.5: cluster growth \"can easily parallelize\"; here whole routed "
      "prefixes run concurrently with deterministically ordered commits");

  const RunSample& eight = samples.back();
  telemetry.telemetry().SetProbes(samples.front().result.total_probes);
  telemetry.telemetry().SetHits(samples.front().result.raw_hits.size());
  telemetry.telemetry().SetTargets(samples.front().result.total_targets);
  telemetry.telemetry().Extra("serial_seconds", serial_seconds);
  telemetry.telemetry().Extra("jobs8_seconds", eight.wall_seconds);
  telemetry.telemetry().Extra(
      "speedup_at_8",
      eight.wall_seconds > 0.0 ? serial_seconds / eight.wall_seconds : 0.0);
  telemetry.telemetry().Extra("diverged", diverged ? 1.0 : 0.0);

  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: parallel pipeline output diverged from serial\n");
    return 1;
  }
  return 0;
}
