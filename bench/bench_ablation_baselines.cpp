// Baseline comparison bench (extends §3.3/§7): 6Gen vs Entropy/IP vs RFC
// 7707 low-byte vs Ullrich recursive vs uniform random, in a train-and-test
// setting on each CDN dataset at one budget. Regenerates the qualitative
// ranking the related-work section implies.
#include <cstdio>

#include "analysis/report.h"
#include "bench_common.h"
#include "core/generator.h"
#include "entropyip/entropyip.h"
#include "patterns/patterns.h"
#include "patterns/space_tree.h"

using namespace sixgen;

namespace {

constexpr std::uint64_t kBudget = 30'000;

std::size_t CountFound(const std::vector<ip6::Address>& targets,
                       const ip6::AddressSet& test_set) {
  std::size_t found = 0;
  for (const auto& t : targets) {
    if (test_set.contains(t)) ++found;
  }
  return found;
}

}  // namespace

int main() {
  bench::BenchMain bench_main("ablation_baselines");
  std::printf("%s",
              analysis::Banner("Baseline ablation: test addresses found "
                               "(train 10% / test 90%, budget 30K)")
                  .c_str());
  analysis::TextTable table(
      {"Dataset", "TestAddrs", "6Gen", "EntropyIP", "SpaceTree", "LowByte",
       "Ullrich", "Random"});

  for (unsigned cdn_index = 1; cdn_index <= eval::kCdnCount; ++cdn_index) {
    const auto cdn = eval::MakeCdnDataset(cdn_index, 0xab0 + cdn_index);
    const auto split = eval::SplitTrainTest(cdn.addresses, 10, 0xf01d);
    const ip6::AddressSet test_set(split.test.begin(), split.test.end());

    core::Config gen_config;
    gen_config.budget = kBudget;
    const std::size_t sixgen =
        CountFound(core::Generate(split.train, gen_config).targets, test_set);

    const auto model = entropyip::EntropyIpModel::Fit(split.train);
    entropyip::GenerateConfig eip_config;
    eip_config.budget = kBudget;
    const std::size_t eip =
        CountFound(model.GenerateTargets(eip_config), test_set);

    const std::size_t space_tree = CountFound(
        patterns::SpaceTreeGenerate(split.train, kBudget), test_set);

    const std::size_t lowbyte = CountFound(
        patterns::LowByteGenerate(split.train, {}, kBudget), test_set);

    patterns::UllrichConfig ullrich_config;
    ullrich_config.free_bits = 15;
    ullrich_config.initial = patterns::BitRange::FromPrefix(cdn.prefix);
    const std::size_t ullrich = CountFound(
        patterns::UllrichGenerate(split.train, ullrich_config, kBudget, 5),
        test_set);

    const std::size_t random = CountFound(
        patterns::RandomGenerate(cdn.prefix, kBudget, 6), test_set);

    table.AddRow({cdn.name, std::to_string(test_set.size()),
                  std::to_string(sixgen), std::to_string(eip),
                  std::to_string(space_tree), std::to_string(lowbyte),
                  std::to_string(ullrich), std::to_string(random)});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintPaperNote(
      "expected ranking: 6Gen >= Entropy/IP and both >> random; the "
      "space-tree partition (6Tree-style) lands near 6Gen; low-byte "
      "competitive only on dense low-IID allocation; Ullrich limited by "
      "its single constant-size range (§3.3)");
  return 0;
}
