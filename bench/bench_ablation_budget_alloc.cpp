// §8 budget-allocation ablation: split one global probe budget across
// routed prefixes by each policy and measure the volume/diversity
// trade-off the paper predicts ("this may heavily skew the target
// generation towards denser networks though, trading off diversity for
// number of active addresses found").
#include <cstdio>
#include <set>

#include "analysis/report.h"
#include "bench_common.h"
#include "scanner/scanner.h"

using namespace sixgen;

int main() {
  bench::BenchMain bench_main("ablation_budget_alloc");
  const auto world = bench::MakeWorld(/*host_factor=*/0.4);
  // Global budget = what the uniform policy would spend in total.
  const std::uint64_t global_budget = 120'000;

  std::printf("%s", analysis::Banner(
                        "Section 8 ablation: global-budget allocation "
                        "policies (total budget 120K probes)")
                        .c_str());
  // Diversity counts only *newly discovered* hosts: the seeds themselves
  // are always rediscovered, so they would mask the skew the paper warns
  // about.
  ip6::AddressSet seed_set;
  for (const auto& seed : world.seeds) seed_set.insert(seed.addr);

  analysis::TextTable table({"Policy", "New non-aliased hits", "Aliased hits",
                             "Prefixes w/ new hits", "ASes w/ new hits"});

  for (eval::BudgetPolicy policy : eval::kAllBudgetPolicies) {
    eval::PipelineConfig config;
    config.total_budget = global_budget;
    config.budget_policy = policy;
    const auto result =
        eval::RunSixGenPipeline(world.universe, world.seeds, config);
    std::vector<ip6::Address> discovered;
    for (const auto& hit : result.dealias.non_aliased_hits) {
      if (!seed_set.contains(hit)) discovered.push_back(hit);
    }
    const auto clean =
        scanner::RollupHits(world.universe.routing(), discovered);
    std::set<routing::Asn> ases;
    for (const auto& [asn, count] : clean.by_as) ases.insert(asn);

    table.AddRow({std::string(eval::BudgetPolicyName(policy)),
                  std::to_string(discovered.size()),
                  std::to_string(result.dealias.aliased_hits.size()),
                  std::to_string(clean.by_prefix.size()),
                  std::to_string(ases.size())});
  }
  std::printf("%s", table.Render().c_str());
  bench::PrintPaperNote(
      "§8 (open question, no paper numbers): seed-proportional allocation "
      "should raise total hits while concentrating them in fewer "
      "prefixes/ASes; uniform maximizes diversity; sqrt-seeds sits "
      "between");
  return 0;
}
